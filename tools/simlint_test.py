#!/usr/bin/env python3
"""Self-test for tools/simlint.py (the v2 token engine).

Covers:
  * every known-bad fixture trips *exactly* its expected rule(s);
  * the clean fixtures (clean.h, tokenizer_torture.h) produce nothing —
    tokenizer_torture.h packs raw strings containing `//`, multi-line block
    comments, `#if 0` regions, digit separators, and UTF-8 literals;
  * the advertised rule set and the fixture set stay in sync;
  * suppression semantics: NOLINT silences the rule, a stale NOLINT is HIB099,
    clang-tidy NOLINTs are ignored;
  * SARIF output is structurally sound;
  * --fix repairs HIB001 guards and HIB009 conversions and is idempotent.

Run from anywhere; registered in ctest as `simlint_selftest`.
"""

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
SIMLINT = os.path.join(HERE, "simlint.py")
FIXTURES = os.path.join(HERE, "simlint_fixtures")

# fixture -> exact ordered list of expected rules (most have exactly one).
EXPECTED = {
    "bad_guard.h": ["HIB001"],
    "bad_iostream.h": ["HIB002"],
    "bad_raw_io.cc": ["HIB003"],
    "bad_units.h": ["HIB004"],
    "bad_assert.cc": ["HIB005"],
    "bad_static_mutable.cc": ["HIB006"],
    "bad_raw_unit_fn.cc": ["HIB007"],
    "bad_value_escape.cc": ["HIB008"],
    "bad_hand_conversion.cc": ["HIB009"],
    "bad_raw_output.cc": ["HIB010"],
    "bad_unordered_iter.cc": ["HIB011"],
    "bad_pointer_key.cc": ["HIB012"],
    "bad_wall_clock.cc": ["HIB013"],
    "bad_float_accum.cc": ["HIB014"],
    "bad_uninit_member.cc": ["HIB015"],
    "bad_catch.cc": ["HIB016"],
    "bad_hot_alloc.cc": ["HIB017", "HIB017"],
    "unused_suppression.cc": ["HIB099"],
    "fixable_hand_conversion.cc": ["HIB009"],
}
CLEAN = ["clean.h", "tokenizer_torture.h"]

FINDING_RE = re.compile(r"^(\S+):(\d+): \[(HIB\d+)\] ")


def run_simlint(*argv):
    proc = subprocess.run([sys.executable, SIMLINT, *argv],
                          capture_output=True, text=True)
    findings = [FINDING_RE.match(line) for line in proc.stdout.splitlines()]
    return proc.returncode, [m.group(3) for m in findings if m]


def check_fixtures(failures):
    for name, want in sorted(EXPECTED.items()):
        code, rules = run_simlint(os.path.join(FIXTURES, name))
        if code == 0:
            failures.append(f"{name}: expected nonzero exit, got 0")
        if rules != want:
            failures.append(f"{name}: expected exactly {want}, got {rules}")
    for name in CLEAN:
        code, rules = run_simlint(os.path.join(FIXTURES, name))
        if code != 0 or rules:
            failures.append(f"{name}: expected clean exit, got code={code} rules={rules}")


def check_rule_sync(failures):
    # Every advertised rule must have a fixture proving it still fires.
    listing = subprocess.run([sys.executable, SIMLINT, "--list-rules"],
                             capture_output=True, text=True).stdout
    advertised = set(re.findall(r"^(HIB\d+)", listing, flags=re.M))
    covered = set(r for rules in EXPECTED.values() for r in rules)
    if advertised != covered:
        failures.append(f"rules without fixtures: {sorted(advertised - covered)}; "
                        f"fixtures for unknown rules: {sorted(covered - advertised)}")


def check_suppressions(failures):
    with tempfile.TemporaryDirectory(dir=HERE) as tmp:
        # NOLINT on the finding line silences the rule.
        path = os.path.join(tmp, "suppressed.cc")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('#include <cassert>\n'
                     'void F(bool ok) { assert(ok); }  // NOLINT(HIB005)\n')
        code, rules = run_simlint(path)
        if code != 0 or rules:
            failures.append(f"NOLINT(HIB005) not honoured: code={code} rules={rules}")

        # NOLINTNEXTLINE applies to the following line only.
        path = os.path.join(tmp, "nextline.cc")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('#include <cassert>\n'
                     '// NOLINTNEXTLINE(HIB005)\n'
                     'void F(bool ok) { assert(ok); }\n')
        code, rules = run_simlint(path)
        if code != 0 or rules:
            failures.append(f"NOLINTNEXTLINE not honoured: code={code} rules={rules}")

        # A clang-tidy NOLINT is not ours: ignored, and never flagged HIB099.
        path = os.path.join(tmp, "tidy.cc")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('struct S { S(int) {} };  '
                     '// NOLINT(google-explicit-constructor)\n')
        code, rules = run_simlint(path)
        if code != 0 or rules:
            failures.append(f"clang-tidy NOLINT misclaimed: code={code} rules={rules}")

        # NOLINT for the wrong rule: the finding survives AND the
        # suppression is reported stale.
        path = os.path.join(tmp, "wrongrule.cc")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('#include <cassert>\n'
                     'void F(bool ok) { assert(ok); }  // NOLINT(HIB013)\n')
        code, rules = run_simlint(path)
        if sorted(rules) != ["HIB005", "HIB099"]:
            failures.append(f"wrong-rule NOLINT: expected [HIB005, HIB099], got {rules}")


def check_sarif(failures):
    with tempfile.TemporaryDirectory(dir=HERE) as tmp:
        out = os.path.join(tmp, "out.sarif")
        subprocess.run([sys.executable, SIMLINT, "--sarif", out,
                        os.path.join(FIXTURES, "bad_assert.cc")],
                       capture_output=True, text=True)
        try:
            with open(out, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            failures.append(f"sarif: unreadable output: {err}")
            return
        try:
            if doc["version"] != "2.1.0":
                failures.append(f"sarif: version {doc['version']}")
            run = doc["runs"][0]
            driver = run["tool"]["driver"]
            if driver["name"] != "simlint":
                failures.append("sarif: wrong driver name")
            rule_ids = {r["id"] for r in driver["rules"]}
            results = run["results"]
            if not results:
                failures.append("sarif: no results for a known-bad fixture")
            for res in results:
                if res["ruleId"] not in rule_ids:
                    failures.append(f"sarif: result rule {res['ruleId']} not declared")
                loc = res["locations"][0]["physicalLocation"]
                if not loc["artifactLocation"]["uri"]:
                    failures.append("sarif: empty artifact uri")
                if loc["region"]["startLine"] < 1:
                    failures.append("sarif: non-positive startLine")
        except (KeyError, IndexError) as err:
            failures.append(f"sarif: missing structure: {err!r}")


def check_fix(failures):
    # --fix must repair the fixable fixtures inside the repo tree (the guard
    # check derives the expected macro from the repo-relative path) and must
    # be a no-op the second time.
    with tempfile.TemporaryDirectory(dir=HERE) as tmp:
        guard = os.path.join(tmp, "bad_guard.h")
        conv = os.path.join(tmp, "fixable_hand_conversion.cc")
        shutil.copy(os.path.join(FIXTURES, "bad_guard.h"), guard)
        shutil.copy(os.path.join(FIXTURES, "fixable_hand_conversion.cc"), conv)

        code, rules = run_simlint("--fix", guard, conv)
        if code != 0 or rules:
            failures.append(f"--fix pass 1: expected clean after fixing, "
                            f"got code={code} rules={rules}")
        before = open(guard).read() + open(conv).read()
        code, rules = run_simlint("--fix", guard, conv)
        after = open(guard).read() + open(conv).read()
        if code != 0 or rules:
            failures.append(f"--fix pass 2: expected clean, got code={code} rules={rules}")
        if before != after:
            failures.append("--fix is not idempotent: second pass changed the files")
        if "ToSeconds(Ms(uptime_ms))" not in open(conv).read():
            failures.append("--fix did not rewrite the hand conversion through units.h")


def main():
    failures = []
    check_fixtures(failures)
    check_rule_sync(failures)
    check_suppressions(failures)
    check_sarif(failures)
    check_fix(failures)

    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print(f"ok: {len(EXPECTED)} bad fixtures tripped exactly their rules; "
          f"{len(CLEAN)} clean fixtures clean; suppressions, SARIF, and --fix "
          "behave")
    return 0


if __name__ == "__main__":
    sys.exit(main())
