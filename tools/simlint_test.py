#!/usr/bin/env python3
"""Self-test for tools/simlint.py (the v4 shard-escape & contract engine).

Covers:
  * every known-bad fixture trips *exactly* its expected rule(s), including
    the v4 set: HIB022 shard-escape (direct and field-sensitive), HIB023
    callback-lifetime (by-ref capture, early release, release-via-helper),
    HIB024 contract propagation, HIB025 layering;
  * the clean fixtures produce nothing — each v4 rule has a clean twin
    exercising the sanctioned shapes next to the violation, and
    tokenizer_torture.h packs raw strings containing `//`, multi-line block
    comments, `#if 0` regions, digit separators, and UTF-8 literals;
  * the v4 witness chains are root-first (shard entry point / caller def
    first, contract declaration or escape site last);
  * HIB018 subsumes a same-line HIB017: one allocation, one finding;
  * the interproc fixture directory trips HIB018/HIB019/HIB020 with the exact
    cross-file witness chains (call path / taint path) in the text output;
  * the advertised rule set and the fixture set stay in sync;
  * suppression semantics: NOLINT silences the rule, a stale NOLINT is HIB099,
    clang-tidy NOLINTs are ignored;
  * SARIF output is structurally sound and interproc findings carry codeFlows;
  * the incremental cache returns identical findings warm and invalidates on
    file edits;
  * --fix repairs HIB001 guards and HIB009 conversions and is idempotent.

Run from anywhere; registered in ctest as `simlint_selftest`.
"""

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
SIMLINT = os.path.join(HERE, "simlint.py")
FIXTURES = os.path.join(HERE, "simlint_fixtures")

# fixture -> exact ordered list of expected rules (most have exactly one).
EXPECTED = {
    "bad_guard.h": ["HIB001"],
    "bad_iostream.h": ["HIB002"],
    "bad_raw_io.cc": ["HIB003"],
    "bad_units.h": ["HIB004"],
    "bad_assert.cc": ["HIB005"],
    "bad_static_mutable.cc": ["HIB006"],
    "bad_raw_unit_fn.cc": ["HIB007"],
    "bad_value_escape.cc": ["HIB008"],
    "bad_hand_conversion.cc": ["HIB009"],
    "bad_raw_output.cc": ["HIB010"],
    "bad_unordered_iter.cc": ["HIB011"],
    "bad_pointer_key.cc": ["HIB012"],
    "bad_wall_clock.cc": ["HIB013"],
    "bad_float_accum.cc": ["HIB014"],
    "bad_uninit_member.cc": ["HIB015"],
    "bad_catch.cc": ["HIB016"],
    "bad_hot_alloc.cc": ["HIB017", "HIB017"],
    "bad_handle_reuse.cc": ["HIB021"],
    "bad_shard_escape.cc": ["HIB022", "HIB022"],
    "bad_callback_lifetime.cc": ["HIB023", "HIB023", "HIB023"],
    "bad_contract.cc": ["HIB024", "HIB024"],
    "bad_raw_deser.cc": ["HIB026", "HIB026"],
    "layering/disk/bad_layering.cc": ["HIB025"],
    # One hot-path allocation, one finding: the HIB018 witness chain
    # subsumes the syntactic HIB017 on the same line.
    "dedupe_subsumed.cc": ["HIB018"],
    "unused_suppression.cc": ["HIB099"],
    "fixable_hand_conversion.cc": ["HIB009"],
}
CLEAN = ["clean.h", "tokenizer_torture.h", "clean_shard_escape.cc",
         "clean_callback_lifetime.cc", "clean_contract.cc",
         "clean_raw_deser.cc", "layering/disk/clean_layering.cc"]

# Per-file v4 witness chains: (fixture, line) -> ordered note substrings.
V4_CHAINS = {
    ("bad_shard_escape.cc", 16): [
        "shard entry point 'RunExperiment' defined here",
        "'RunExperiment' calls 'Registry::Track' here",
        "address of shard-owned 's' stored into member 'Registry::sim_'",
        "static 'g_registry' keeps a 'Registry' alive across shard runs",
    ],
    ("bad_callback_lifetime.cc", 39): [
        "callback capturing 'h' scheduled here",
        "'h' passed to 'Controller::Finish' here",
        "'Controller::Finish' releases its handle parameter here",
    ],
    ("bad_contract.cc", 19): [
        "caller 'Caller' defined here",
        "'Caller' calls 'Engine::Step' here without establishing the context",
        "'Engine::Step' declares HIB_THREAD_CONTEXT(kShardContext) here",
    ],
}

# The interproc fixtures only make sense scanned together: the roots
# (hot_submit.cc, shard_entry.cc) are clean in isolation and the helpers are
# only findings because the roots reach them.  (file, line, rule) in output
# order for a whole-directory scan.
INTERPROC_DIR = os.path.join(FIXTURES, "interproc")
INTERPROC_EXPECTED = [
    ("alloc_helper.cc", 12, "HIB018"),
    ("alloc_helper.cc", 13, "HIB018"),
    ("shard_static.cc", 13, "HIB019"),
    ("taint_helper.cc", 9, "HIB013"),
    ("taint_sink.cc", 20, "HIB020"),
    ("taint_sink.cc", 21, "HIB020"),
]

# finding line -> exact ordered witness-chain note substrings.
INTERPROC_CHAINS = {
    ("alloc_helper.cc", 13): [
        "hot_submit.cc:12: dispatch root 'ArrayController::Submit' defined here",
        "hot_submit.cc:14: 'ArrayController::Submit' calls 'Planner::PlanTargets' here",
        "alloc_helper.cc:13: allocation here",
    ],
    ("shard_static.cc", 13): [
        "shard_entry.cc:10: shard entry point 'RunExperiment' defined here",
        "shard_entry.cc:13: 'RunExperiment' calls 'CounterSink::Count' here",
        "shard_static.cc:13: static 'g_hits'",
    ],
    ("taint_sink.cc", 20): [
        "taint_helper.cc:9: nondeterministic source 'time()' read here",
        "taint_sink.cc:19: 't' derives from tainted call 'NowTicks(...)' here",
        "taint_sink.cc:20: sink here",
    ],
}

FINDING_RE = re.compile(r"^(\S+):(\d+): \[(HIB\d+)\] ")
NOTE_RE = re.compile(r"^    note: (.*)$")


def run_simlint(*argv, raw=False, no_cache=True):
    cmd = [sys.executable, SIMLINT]
    if no_cache:
        cmd.append("--no-cache")
    proc = subprocess.run(cmd + list(argv), capture_output=True, text=True)
    findings = [FINDING_RE.match(line) for line in proc.stdout.splitlines()]
    rules = [m.group(3) for m in findings if m]
    if raw:
        return proc.returncode, rules, proc.stdout
    return proc.returncode, rules


def check_fixtures(failures):
    for name, want in sorted(EXPECTED.items()):
        code, rules = run_simlint(os.path.join(FIXTURES, name))
        if code == 0:
            failures.append(f"{name}: expected nonzero exit, got 0")
        if rules != want:
            failures.append(f"{name}: expected exactly {want}, got {rules}")
    for name in CLEAN:
        code, rules = run_simlint(os.path.join(FIXTURES, name))
        if code != 0 or rules:
            failures.append(f"{name}: expected clean exit, got code={code} rules={rules}")


def check_interproc(failures):
    # One whole-directory scan: the cross-TU rules need all six files modelled
    # together before reachability exists at all.
    code, _, stdout = run_simlint(INTERPROC_DIR, raw=True)
    if code == 0:
        failures.append("interproc: expected nonzero exit for the fixture dir")

    lines = stdout.splitlines()
    got = []
    notes = {}  # (file, line) of finding -> list of note texts
    current = None
    for line in lines:
        m = FINDING_RE.match(line)
        if m:
            current = (os.path.basename(m.group(1)), int(m.group(2)))
            got.append((current[0], current[1], m.group(3)))
            notes.setdefault(current, [])
            continue
        n = NOTE_RE.match(line)
        if n and current is not None:
            notes[current].append(n.group(1))
        elif current is not None and line.strip():
            current = None
    if got != INTERPROC_EXPECTED:
        failures.append(f"interproc: expected {INTERPROC_EXPECTED}, got {got}")
        return

    # Witness chains must spell out the whole path, root first.  The HIB018
    # chain in particular is the acceptance case HIB017 cannot see: the root
    # lives in hot_submit.cc, the allocation in alloc_helper.cc.
    for key, want in INTERPROC_CHAINS.items():
        have = notes.get(key, [])
        if len(have) != len(want):
            failures.append(f"interproc {key}: expected {len(want)} witness "
                            f"steps, got {len(have)}: {have}")
            continue
        for step, (w, h) in enumerate(zip(want, have)):
            if w not in h:
                failures.append(f"interproc {key} step {step}: "
                                f"expected {w!r} in {h!r}")

    # Scanned alone, the helper files are exactly as invisible as they are to
    # HIB017: per-file analysis of alloc_helper.cc must not produce HIB018.
    code, rules = run_simlint(os.path.join(INTERPROC_DIR, "alloc_helper.cc"))
    if "HIB018" in rules:
        failures.append("interproc: HIB018 fired without the hot-path root "
                        f"in scope (per-file rules: {rules})")


def check_v4_chains(failures):
    # The v4 rules carry root-first witness chains even in per-file scans
    # (the roots and the violations live in one fixture file).
    for (name, want_line), want in sorted(V4_CHAINS.items()):
        _code, _rules, stdout = run_simlint(os.path.join(FIXTURES, name),
                                            raw=True)
        notes = []
        collecting = False
        for line in stdout.splitlines():
            m = FINDING_RE.match(line)
            if m:
                collecting = int(m.group(2)) == want_line
                continue
            n = NOTE_RE.match(line)
            if n and collecting:
                notes.append(n.group(1))
            elif line.strip():
                collecting = False
        if len(notes) != len(want):
            failures.append(f"v4 chain {name}:{want_line}: expected "
                            f"{len(want)} witness steps, got {len(notes)}: "
                            f"{notes}")
            continue
        for step, (w, h) in enumerate(zip(want, notes)):
            if w not in h:
                failures.append(f"v4 chain {name}:{want_line} step {step}: "
                                f"expected {w!r} in {h!r}")


def check_rule_sync(failures):
    # Every advertised rule must have a fixture proving it still fires.
    listing = subprocess.run([sys.executable, SIMLINT, "--list-rules"],
                             capture_output=True, text=True).stdout
    advertised = set(re.findall(r"^(HIB\d+)", listing, flags=re.M))
    covered = set(r for rules in EXPECTED.values() for r in rules)
    covered |= set(rule for _, _, rule in INTERPROC_EXPECTED)
    if advertised != covered:
        failures.append(f"rules without fixtures: {sorted(advertised - covered)}; "
                        f"fixtures for unknown rules: {sorted(covered - advertised)}")


def check_suppressions(failures):
    with tempfile.TemporaryDirectory(dir=HERE) as tmp:
        # NOLINT on the finding line silences the rule.
        path = os.path.join(tmp, "suppressed.cc")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('#include <cassert>\n'
                     'void F(bool ok) { assert(ok); }  // NOLINT(HIB005)\n')
        code, rules = run_simlint(path)
        if code != 0 or rules:
            failures.append(f"NOLINT(HIB005) not honoured: code={code} rules={rules}")

        # NOLINTNEXTLINE applies to the following line only.
        path = os.path.join(tmp, "nextline.cc")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('#include <cassert>\n'
                     '// NOLINTNEXTLINE(HIB005)\n'
                     'void F(bool ok) { assert(ok); }\n')
        code, rules = run_simlint(path)
        if code != 0 or rules:
            failures.append(f"NOLINTNEXTLINE not honoured: code={code} rules={rules}")

        # A clang-tidy NOLINT is not ours: ignored, and never flagged HIB099.
        path = os.path.join(tmp, "tidy.cc")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('struct S { S(int) {} };  '
                     '// NOLINT(google-explicit-constructor)\n')
        code, rules = run_simlint(path)
        if code != 0 or rules:
            failures.append(f"clang-tidy NOLINT misclaimed: code={code} rules={rules}")

        # NOLINT for the wrong rule: the finding survives AND the
        # suppression is reported stale.
        path = os.path.join(tmp, "wrongrule.cc")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('#include <cassert>\n'
                     'void F(bool ok) { assert(ok); }  // NOLINT(HIB013)\n')
        code, rules = run_simlint(path)
        if sorted(rules) != ["HIB005", "HIB099"]:
            failures.append(f"wrong-rule NOLINT: expected [HIB005, HIB099], got {rules}")


def check_sarif(failures):
    with tempfile.TemporaryDirectory(dir=HERE) as tmp:
        out = os.path.join(tmp, "out.sarif")
        subprocess.run([sys.executable, SIMLINT, "--sarif", out,
                        os.path.join(FIXTURES, "bad_assert.cc")],
                       capture_output=True, text=True)
        try:
            with open(out, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            failures.append(f"sarif: unreadable output: {err}")
            return
        try:
            if doc["version"] != "2.1.0":
                failures.append(f"sarif: version {doc['version']}")
            run = doc["runs"][0]
            driver = run["tool"]["driver"]
            if driver["name"] != "simlint":
                failures.append("sarif: wrong driver name")
            rule_ids = {r["id"] for r in driver["rules"]}
            results = run["results"]
            if not results:
                failures.append("sarif: no results for a known-bad fixture")
            for res in results:
                if res["ruleId"] not in rule_ids:
                    failures.append(f"sarif: result rule {res['ruleId']} not declared")
                loc = res["locations"][0]["physicalLocation"]
                if not loc["artifactLocation"]["uri"]:
                    failures.append("sarif: empty artifact uri")
                if loc["region"]["startLine"] < 1:
                    failures.append("sarif: non-positive startLine")
        except (KeyError, IndexError) as err:
            failures.append(f"sarif: missing structure: {err!r}")


def check_codeflows(failures):
    # Interproc findings must export their witness chains as SARIF codeFlows
    # so code scanning UIs can render the path.
    with tempfile.TemporaryDirectory(dir=HERE) as tmp:
        out = os.path.join(tmp, "out.sarif")
        subprocess.run([sys.executable, SIMLINT, "--no-cache", "--sarif", out,
                        INTERPROC_DIR], capture_output=True, text=True)
        try:
            with open(out, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            failures.append(f"codeflows: unreadable sarif: {err}")
            return
        try:
            results = doc["runs"][0]["results"]
            flows = [r for r in results if r.get("codeFlows")]
            if not flows:
                failures.append("codeflows: no result carries codeFlows")
                return
            hib018 = [r for r in flows if r["ruleId"] == "HIB018"]
            if not hib018:
                failures.append("codeflows: no HIB018 result carries codeFlows")
                return
            locs = hib018[0]["codeFlows"][0]["threadFlows"][0]["locations"]
            if len(locs) < 2:
                failures.append(f"codeflows: chain too short ({len(locs)} steps)")
            uris = []
            for step in locs:
                loc = step["location"]
                phys = loc["physicalLocation"]
                uri = phys["artifactLocation"]["uri"]
                uris.append(uri)
                if phys["region"]["startLine"] < 1:
                    failures.append("codeflows: non-positive startLine in step")
                if not loc["message"]["text"]:
                    failures.append("codeflows: step without a message")
            # Root-first ordering across files: the chain starts at the hot
            # root and ends at the allocation.
            if not uris[0].endswith("hot_submit.cc"):
                failures.append(f"codeflows: chain starts at {uris[0]}, "
                                "expected hot_submit.cc")
            if not uris[-1].endswith("alloc_helper.cc"):
                failures.append(f"codeflows: chain ends at {uris[-1]}, "
                                "expected alloc_helper.cc")
        except (KeyError, IndexError) as err:
            failures.append(f"codeflows: missing structure: {err!r}")


def check_cache(failures):
    # Warm runs must serve identical findings from the cache; an edit to the
    # file must invalidate its entry (content-hash keying).
    with tempfile.TemporaryDirectory(dir=HERE) as tmp:
        cache = os.path.join(tmp, "cache.json")
        path = os.path.join(tmp, "churn.cc")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('#include <cassert>\n'
                     'void F(bool ok) { assert(ok); }\n')

        code, rules = run_simlint("--cache", cache, path, no_cache=False)
        if code == 0 or rules != ["HIB005"]:
            failures.append(f"cache cold: expected [HIB005], got {rules}")
        try:
            with open(cache, encoding="utf-8") as fh:
                doc = json.load(fh)
            if "version" not in doc or "files" not in doc:
                failures.append(f"cache: missing version/files keys: {sorted(doc)}")
        except (OSError, json.JSONDecodeError) as err:
            failures.append(f"cache: not written or unreadable: {err}")
            return

        code, rules = run_simlint("--cache", cache, path, no_cache=False)
        if code == 0 or rules != ["HIB005"]:
            failures.append(f"cache warm: expected [HIB005], got {rules}")

        # Fix the file: a stale cache hit would keep reporting HIB005.
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('void F(bool ok) { (void)ok; }\n')
        code, rules = run_simlint("--cache", cache, path, no_cache=False)
        if code != 0 or rules:
            failures.append(f"cache stale: served old findings after edit: "
                            f"code={code} rules={rules}")


def check_fix(failures):
    # --fix must repair the fixable fixtures inside the repo tree (the guard
    # check derives the expected macro from the repo-relative path) and must
    # be a no-op the second time.
    with tempfile.TemporaryDirectory(dir=HERE) as tmp:
        guard = os.path.join(tmp, "bad_guard.h")
        conv = os.path.join(tmp, "fixable_hand_conversion.cc")
        shutil.copy(os.path.join(FIXTURES, "bad_guard.h"), guard)
        shutil.copy(os.path.join(FIXTURES, "fixable_hand_conversion.cc"), conv)

        code, rules = run_simlint("--fix", guard, conv)
        if code != 0 or rules:
            failures.append(f"--fix pass 1: expected clean after fixing, "
                            f"got code={code} rules={rules}")
        before = open(guard).read() + open(conv).read()
        code, rules = run_simlint("--fix", guard, conv)
        after = open(guard).read() + open(conv).read()
        if code != 0 or rules:
            failures.append(f"--fix pass 2: expected clean, got code={code} rules={rules}")
        if before != after:
            failures.append("--fix is not idempotent: second pass changed the files")
        if "ToSeconds(Ms(uptime_ms))" not in open(conv).read():
            failures.append("--fix did not rewrite the hand conversion through units.h")


def main():
    failures = []
    check_fixtures(failures)
    check_interproc(failures)
    check_v4_chains(failures)
    check_rule_sync(failures)
    check_suppressions(failures)
    check_sarif(failures)
    check_codeflows(failures)
    check_cache(failures)
    check_fix(failures)

    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print(f"ok: {len(EXPECTED)} bad fixtures tripped exactly their rules; "
          f"{len(INTERPROC_EXPECTED)} interproc findings with witness chains; "
          f"{len(CLEAN)} clean fixtures clean; suppressions, SARIF codeFlows, "
          "the incremental cache, and --fix behave")
    return 0


if __name__ == "__main__":
    sys.exit(main())
