#!/usr/bin/env python3
"""Self-test for tools/simlint.py.

Each known-bad fixture in tools/simlint_fixtures/ must trip *exactly one*
finding of its expected rule; the clean fixture must produce none.  Run from
anywhere; registered in ctest as `simlint_selftest`.
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
SIMLINT = os.path.join(HERE, "simlint.py")
FIXTURES = os.path.join(HERE, "simlint_fixtures")

EXPECTED = {
    "bad_guard.h": "HIB001",
    "bad_iostream.h": "HIB002",
    "bad_raw_io.cc": "HIB003",
    "bad_units.h": "HIB004",
    "bad_assert.cc": "HIB005",
    "bad_static_mutable.cc": "HIB006",
    "bad_raw_unit_fn.cc": "HIB007",
    "bad_value_escape.cc": "HIB008",
    "bad_hand_conversion.cc": "HIB009",
    "bad_raw_output.cc": "HIB010",
}

FINDING_RE = re.compile(r"^(\S+):(\d+): \[(HIB\d+)\] ")


def run_simlint(path):
    proc = subprocess.run([sys.executable, SIMLINT, path],
                          capture_output=True, text=True)
    findings = [FINDING_RE.match(line) for line in proc.stdout.splitlines()]
    return proc.returncode, [m.group(3) for m in findings if m]


def main():
    failures = []

    for name, want_rule in sorted(EXPECTED.items()):
        code, rules = run_simlint(os.path.join(FIXTURES, name))
        if code == 0:
            failures.append(f"{name}: expected nonzero exit, got 0")
        if rules != [want_rule]:
            failures.append(f"{name}: expected exactly [{want_rule}], got {rules}")

    code, rules = run_simlint(os.path.join(FIXTURES, "clean.h"))
    if code != 0 or rules:
        failures.append(f"clean.h: expected clean exit, got code={code} rules={rules}")

    # The fixture list and the rule set must stay in sync: every rule has a
    # known-bad fixture proving it still fires.
    listing = subprocess.run([sys.executable, SIMLINT, "--list-rules"],
                             capture_output=True, text=True).stdout
    advertised = set(re.findall(r"^(HIB\d+)", listing, flags=re.M))
    covered = set(EXPECTED.values())
    if advertised != covered:
        failures.append(f"rules without fixtures: {sorted(advertised - covered)}; "
                        f"fixtures for unknown rules: {sorted(covered - advertised)}")

    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print(f"ok: {len(EXPECTED)} bad fixtures each tripped exactly their rule; clean fixture clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
