// HIB009 fixture: hand-rolled unit conversion instead of units.h helpers.
inline double GapScaled(double idle_seconds) {
  return idle_seconds * 1000.0;
}
