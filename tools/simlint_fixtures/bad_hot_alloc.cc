// Known-bad fixture: HIB017 — heap allocation in a per-request layer.  The
// dispatch hot path is allocation-free (SlotPool handles, SmallVector inline
// storage); std::make_shared and new expressions there are perf regressions.
#include <memory>

namespace fixture {

struct Context {
  int pending = 0;
};

std::shared_ptr<Context> SharedPerRequest() {
  return std::make_shared<Context>();  // finding: make_shared per request
}

Context* RawPerRequest() {
  return new Context();  // finding: new expression per request
}

Context* JustifiedSetup() {
  // Suppressed: a justified one-time allocation keeps the rule quiet.
  return new Context();  // NOLINT(HIB017) setup-time, not per-request
}

}  // namespace fixture
