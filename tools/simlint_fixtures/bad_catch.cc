// Known-bad fixture: HIB016 — catching an exception by value slices and
// copies at an unpredictable point; catch by const reference.
#include <stdexcept>

namespace fixture {

int Guarded(int (*risky)()) {
  try {
    return risky();
  } catch (std::exception e) {
    return -1;
  }
}

}  // namespace fixture
