// HIB023: a Schedule* closure must own its captures until the event fires.
//
// Three violations: a by-reference capture (dangles by construction), a
// value-captured PoolHandle released before the queue drains, and the same
// release routed through a helper that releases its handle parameter (the
// interprocedural case HIB021 cannot see).
struct PoolHandle {
  unsigned index = 0;
  unsigned generation = 0;
};

class SlotPool {
 public:
  PoolHandle Acquire();
  void Release(PoolHandle h);
};

class Simulator {
 public:
  template <typename F>
  void ScheduleIn(double delay, F cb);
};

class Controller {
 public:
  void ByRef(int count) {
    sim_.ScheduleIn(1.0, [&count] { ++count; });
  }

  void ReleasedEarly() {
    PoolHandle h = pool_.Acquire();
    sim_.ScheduleIn(2.0, [this, h] { Touch(h); });
    pool_.Release(h);
  }

  void ReleasedViaHelper() {
    PoolHandle h = pool_.Acquire();
    sim_.ScheduleIn(3.0, [this, h] { Touch(h); });
    Finish(h);
  }

 private:
  void Touch(PoolHandle h);
  void Finish(PoolHandle h) { pool_.Release(h); }

  Simulator sim_;
  SlotPool pool_;
};
