// Known-bad fixture: HIB009 with a mechanical fix available.  --fix rewrites
// the division through the units.h factories (`ToSeconds(Ms(...))`), after
// which the file must come back clean and a second --fix must be a no-op.
#include "src/util/units.h"

namespace fixture {

double UptimeSeconds(long uptime_ms) {
  return uptime_ms / 1000.0;
}

}  // namespace fixture
