// Fixture: a raw double carrying a milliseconds value by name.
// Expected finding: HIB004 (exactly one).
#ifndef HIBERNATOR_TOOLS_SIMLINT_FIXTURES_BAD_UNITS_H_
#define HIBERNATOR_TOOLS_SIMLINT_FIXTURES_BAD_UNITS_H_

namespace hib {

struct FixtureParams {
  double timeout_ms = 250.0;
};

}  // namespace hib

#endif  // HIBERNATOR_TOOLS_SIMLINT_FIXTURES_BAD_UNITS_H_
