// Clean HIB024: every sanctioned way to satisfy a declared contract.
//   - declare the same contract, pushing the obligation to *our* callers;
//   - establish the context with ThreadContextScope;
//   - acquire the handle in this frame, or IsLive-check it first.
#include "src/util/thread_annotations.h"

struct PoolHandle {
  unsigned index = 0;
  unsigned generation = 0;
};

class SlotPool {
 public:
  PoolHandle Acquire();
  bool IsLive(PoolHandle h) const;
  void Release(PoolHandle h) HIB_REQUIRES_LIVE(h);
};

class Engine {
 public:
  void Step() HIB_THREAD_CONTEXT(kShardContext);
  void Touch(PoolHandle h) HIB_REQUIRES_LIVE(h);
};

void InsideShard(Engine& e) HIB_THREAD_CONTEXT(kShardContext) {
  e.Step();  // same contract declared: our callers carry the obligation
}

void Establishes(SlotPool& pool) {
  hib::ThreadContextScope scope(hib::kShardContext);
  Engine e;
  e.Step();
  PoolHandle h = pool.Acquire();
  if (pool.IsLive(h)) {
    e.Touch(h);
  }
  pool.Release(h);
}
