// Known-bad fixture: HIB099 — a suppression whose rule never fires on its
// target line is stale and must be removed.

namespace fixture {

int Plain() {
  int x = 2 + 2;  // NOLINT(HIB013)
  return x;
}

}  // namespace fixture
