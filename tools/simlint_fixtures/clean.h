// Fixture: fully conformant header; simlint must report zero findings,
// including for the explicitly suppressed line below.
#ifndef HIBERNATOR_TOOLS_SIMLINT_FIXTURES_CLEAN_H_
#define HIBERNATOR_TOOLS_SIMLINT_FIXTURES_CLEAN_H_

namespace hib {

struct CleanParams {
  double lambda_per_ms = 0.0;              // rates are exempt from HIB004
  double legacy_budget_ms = 0.0;           // simlint: allow(HIB004)
};

}  // namespace hib

#endif  // HIBERNATOR_TOOLS_SIMLINT_FIXTURES_CLEAN_H_
