// HIB007 fixture: the function name announces a physical quantity, but the
// signature deals in a raw double instead of the units.h types.
double TransitionEnergyOf(int from_rpm, int to_rpm);
