// Interproc fixture: an allocating helper one file away from the hot path.
// Nothing here is syntactically hot, so HIB017 stays quiet; both findings
// exist only because hot_submit.cc's ArrayController::Submit reaches this
// method through the call graph (HIB018).
#include <vector>

namespace fixture {

class Planner {
 public:
  int PlanTargets(int request) {
    targets_.push_back(request);  // finding: unreserved member growth, hot-reachable
    int* scratch = new int(request);  // finding: new expression, hot-reachable
    int planned = *scratch;
    delete scratch;
    return planned;
  }

 private:
  std::vector<int> targets_;
};

}  // namespace fixture
