// Interproc fixture: mutable static state reachable from a shard entry point.
// Atomic, so it never tears — but shard execution order still leaks into the
// value, which is a determinism race, not a memory race (HIB019).
#include <atomic>

namespace fixture {

static std::atomic<int> g_hits{0};

class CounterSink {
 public:
  int Count(int shard) {
    g_hits += shard;  // finding: shard-reachable mutable static
    return g_hits.load();
  }
};

}  // namespace fixture
