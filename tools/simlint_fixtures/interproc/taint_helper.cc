// Interproc fixture: a nondeterminism source behind a helper.  The wall-clock
// read is flagged per-file (HIB013); the interesting part is that the return
// value taints every caller, which HIB020 tracks into sinks in taint_sink.cc.
#include <ctime>

namespace fixture {

long NowTicks() {
  return static_cast<long>(time(nullptr));  // finding: wall clock (HIB013)
}

}  // namespace fixture
