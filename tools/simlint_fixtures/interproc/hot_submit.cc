// Interproc fixture: the hot-path root.  ArrayController::Submit is itself
// allocation-free — the violations live in Planner::PlanTargets over in
// alloc_helper.cc, which HIB017's per-file syntactic scan can never see.
// HIB018 walks the call graph from Submit and reports them with the call
// chain as witness.
namespace fixture {

class Planner;

class ArrayController {
 public:
  int Submit(int request) {
    Planner planner;
    return planner.PlanTargets(request);
  }
};

}  // namespace fixture
