// Interproc fixture: the shard entry point.  RunExperiment fans work out to
// CounterSink::Count (shard_static.cc), which bumps file-scope static state.
// Per-file checks pass — the static is an atomic, so HIB006's torn-write
// heuristic has nothing to say — but shards racing on it break bit-identical
// replay, which is exactly what HIB019 exists to catch.
namespace fixture {

class CounterSink;

int RunExperiment(CounterSink& sink, int shards) {
  int total = 0;
  for (int i = 0; i < shards; ++i) {
    total += sink.Count(i);
  }
  return total;
}

}  // namespace fixture
