// Interproc fixture: HIB013-source-derived values reaching determinism sinks.
// NowTicks (taint_helper.cc) returns a wall-clock read; routing it into an
// event timestamp or a seed makes every run unrepeatable (HIB020).
namespace fixture {

class EventQueue;

class Replayer {
 public:
  void Configure(EventQueue& q);

 private:
  long seed_ = 0;
};

long NowTicks();

void Replayer::Configure(EventQueue& q) {
  long t = NowTicks();
  q.ScheduleAt(t, 1);  // finding: tainted value becomes an event timestamp
  seed_ = t;  // finding: tainted value becomes a seed
}

}  // namespace fixture
