// Known-bad fixture: HIB013 — ambient randomness in library code breaks
// replayability; randomness must come from the seeded PRNGs.
#include <random>

namespace fixture {

unsigned AmbientSeed() {
  std::random_device entropy;
  return entropy();
}

}  // namespace fixture
