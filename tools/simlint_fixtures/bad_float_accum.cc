// Known-bad fixture: HIB014 — accumulating a double inside a loop over an
// unordered container makes the sum depend on the visit order (float
// addition is not associative).  The loop itself is suppressed so this
// fixture isolates the accumulation check.
#include <unordered_map>

namespace fixture {

class EnergyRollup {
 public:
  double Sum() const {
    double total = 0.0;
    for (const auto& entry : per_disk_) {  // NOLINT(HIB011)
      total += entry.second;
    }
    return total;
  }

 private:
  std::unordered_map<int, double> per_disk_;
};

}  // namespace fixture
