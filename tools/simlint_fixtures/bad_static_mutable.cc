// Fixture: a mutable function-local static (hidden global state).
// Expected finding: HIB006 (exactly one) -- the const and atomic statics
// below are exempt and must stay silent.
#include <atomic>

namespace hib {

static const int kFixtureLimit = 8;
static std::atomic<int> fixture_calls{0};

int FixtureNextId() {
  static int next_id = 0;
  fixture_calls.fetch_add(1, std::memory_order_relaxed);
  return next_id < kFixtureLimit ? ++next_id : next_id;
}

}  // namespace hib
