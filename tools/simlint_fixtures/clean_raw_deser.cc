// Clean twin for HIB026: the sanctioned byte-handling shapes right next to
// the violation.  std::bit_cast and std::memcpy are local, size-checked type
// punning; whole-file parsing belongs behind the validated
// CompiledTraceReader path, never a raw cast of the buffer.
#include <bit>
#include <cstdint>
#include <cstring>

namespace fixture {

inline std::uint64_t BitsOfSample(double sample) {
  return std::bit_cast<std::uint64_t>(sample);
}

inline std::uint32_t SectorsAt(const unsigned char* bytes) {
  std::uint32_t sectors = 0;
  std::memcpy(&sectors, bytes, sizeof(sectors));
  return sectors;
}

}  // namespace fixture
