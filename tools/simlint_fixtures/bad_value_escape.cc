// HIB008 fixture: .value() outside the sanctioned I/O and stats boundaries.
#include "src/util/units.h"

inline bool LongerThanRaw(hib::Duration d, double raw) {
  return d.value() > raw;
}
