// HIB018 subsumes HIB017: one allocation on a hot dispatch path must yield
// exactly one finding — the interprocedural one, which carries the witness
// chain.  Two findings on the same line are noise.
#include <memory>

class ArrayController {
 public:
  void Submit() {
    auto ctx = std::make_shared<int>(7);
    (void)ctx;
  }
};
