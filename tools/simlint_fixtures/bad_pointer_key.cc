// Known-bad fixture: HIB012 — a pointer key in an ordered associative
// container sorts entries by heap address, which differs every run.
#include <map>

namespace fixture {

struct Widget {
  int id = 0;
};

class Registry {
 private:
  std::map<const Widget*, int> priorities_;
};

}  // namespace fixture
