// Known-bad fixture: HIB015 — a scalar member without a default member
// initializer in a constructor-less struct starts life indeterminate.

namespace fixture {

struct FixtureConfig {
  int retries;
  bool verbose = false;
};

}  // namespace fixture
