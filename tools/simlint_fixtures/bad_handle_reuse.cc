// Known-bad fixture: HIB021 — pool-handle use-after-release.  Release bumps
// the slot generation, so any later use of the same handle is at best a
// CHECK failure and at worst an ABA alias of the slot's next tenant.
namespace fixture {

struct PoolHandle {
  unsigned index = 0;
  unsigned generation = 0;
};

struct FakePool {
  PoolHandle Acquire();
  int Get(PoolHandle h);
  void Release(PoolHandle h);
};

int Drive(FakePool& pool) {
  PoolHandle h = pool.Acquire();
  int value = pool.Get(h);
  pool.Release(h);
  return value + pool.Get(h);  // finding: handle used after Release
}

int SafeBranch(FakePool& pool, bool cancel) {
  PoolHandle h = pool.Acquire();
  if (cancel) {
    pool.Release(h);  // release confined to this branch...
    return 0;
  }
  return pool.Get(h);  // ...so this use is fine
}

int Reacquire(FakePool& pool) {
  PoolHandle h = pool.Acquire();
  pool.Release(h);
  h = pool.Acquire();  // reassignment makes the handle fresh again
  return pool.Get(h);
}

}  // namespace fixture
