// Fixture: a bare assert() instead of HIB_CHECK / HIB_DCHECK.
// Expected finding: HIB005 (exactly one).
#include <cassert>

namespace hib {

void FixtureValidate(int depth) { assert(depth >= 0); }

}  // namespace hib
