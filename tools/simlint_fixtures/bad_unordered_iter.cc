// Known-bad fixture: HIB011 — range-for over an unordered container in
// library code visits elements in a hash/insertion-history-dependent order.
#include <unordered_map>

namespace fixture {

class ShardLedger {
 public:
  long Total() const {
    long total = 0;
    for (const auto& entry : balances_) {
      total += entry.second;
    }
    return total;
  }

 private:
  std::unordered_map<int, long> balances_;
};

}  // namespace fixture
