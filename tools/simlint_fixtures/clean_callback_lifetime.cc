// Clean HIB023: the sanctioned shapes.  Value captures (handles are 8
// bytes), and Release as the last statement *inside* the callback — the
// slot stays live until the event has fired.
struct PoolHandle {
  unsigned index = 0;
  unsigned generation = 0;
};

class SlotPool {
 public:
  PoolHandle Acquire();
  void Release(PoolHandle h);
  void Use(PoolHandle h);
};

class Simulator {
 public:
  template <typename F>
  void ScheduleIn(double delay, F cb);
};

class Controller {
 public:
  void Ok() {
    PoolHandle h = pool_.Acquire();
    sim_.ScheduleIn(1.0, [this, h] {
      pool_.Use(h);
      pool_.Release(h);
    });
  }

  void ValueCapture(int n) {
    sim_.ScheduleIn(2.0, [n] { (void)n; });
  }

 private:
  Simulator sim_;
  SlotPool pool_;
};
