// Clean HIB022: addresses of shard-owned state may flow freely between
// shard-local objects — only static-duration escape outlives the shard run.
#include <vector>

class Simulator {
 public:
  void Step() {}
};

class Probe {
 public:
  void Attach(Simulator& s) { sim_ = &s; }

 private:
  Simulator* sim_ = nullptr;
};

void RunExperiment() {
  Simulator sim;
  Simulator* current = &sim;  // stack-to-stack: dies with the frame
  current->Step();
  std::vector<Simulator*> batch;  // local container: same lifetime
  batch.push_back(&sim);
  Probe probe;  // Probe is stack-held; no static keeps one alive
  probe.Attach(sim);
  (void)batch;
}
