// Fixture: library-side code writing straight to stdout.
// Expected finding: HIB003 (exactly one).
#include <ostream>

namespace hib {

void FixturePrint() { std::cout << "energy: 42 J\n"; }

}  // namespace hib
