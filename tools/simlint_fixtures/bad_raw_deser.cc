// Known-bad fixture: HIB026 — raw binary deserialization outside the trace
// format layer.  fread-into-struct and reinterpret_cast parsing skip the
// magic/version/checksum/bounds validation CompiledTraceReader centralises.
#include <cstdint>
#include <cstdio>

namespace fixture {

struct RecordImage {
  std::int64_t lba = 0;
  std::uint32_t sectors = 0;
  std::uint32_t flags = 0;
};

RecordImage ReadUnchecked(std::FILE* file) {
  RecordImage image;
  std::fread(&image, sizeof(image), 1, file);  // finding: unchecked fread parse
  return image;
}

const RecordImage* CastUnchecked(const std::uint8_t* bytes) {
  return reinterpret_cast<const RecordImage*>(bytes);  // finding: pointer-cast parse
}

}  // namespace fixture
