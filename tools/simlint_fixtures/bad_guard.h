// Fixture: the include guard does not match the path-derived name.
// Expected finding: HIB001 (exactly one).
#ifndef SOME_WRONG_GUARD_H_
#define SOME_WRONG_GUARD_H_

namespace hib {

inline int FixtureAnswer() { return 42; }

}  // namespace hib

#endif  // SOME_WRONG_GUARD_H_
