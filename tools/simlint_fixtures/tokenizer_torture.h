// Clean fixture: every construct below LOOKS like a violation to a line-regex
// scanner but sits in a comment, string, raw string, or disabled region.  The
// token engine must report nothing here.
#ifndef HIBERNATOR_TOOLS_SIMLINT_FIXTURES_TOKENIZER_TORTURE_H_
#define HIBERNATOR_TOOLS_SIMLINT_FIXTURES_TOKENIZER_TORTURE_H_

#include <string>
#include <unordered_map>

namespace fixture {

// A raw string whose body contains line-comment markers, stdio calls, and a
// fake include guard — none of it is code.
inline const char* kRawDoc = R"doc(
  // std::cout << "not real code" << std::endl;
  printf("also not real: %d\n", 42);
  assert(false);
  #ifndef WRONG_GUARD_H_
  for (const auto& kv : fake_unordered_map_) {}
)doc";

// A delimiter-bearing raw string: the `)"` inside must not end it early.
inline const char* kTricky = R"x(ends with )" but not here)x";

/* A multi-line block comment:
   assert(should_not_fire);
   double latency_ms = 3600.0 * elapsed_hours;
   std::random_device entropy;  still a comment
*/

#if 0
// Disabled region: the preprocessor never compiles this, simlint must skip it.
#include <iostream>
static int mutable_counter = 0;
inline double BadLatencyOf(double raw) { return raw * 1000.0; }
inline void Walk(const std::unordered_map<int, int>& m) {
  for (const auto& kv : m) {
    (void)kv;
  }
}
#endif

// Digit separators must lex as one number (no char-literal confusion).
inline constexpr long kSectorsPerExtent = 1'000'000;
inline constexpr unsigned kMask = 0xFF'FF'00'00;

// UTF-8 in a string literal, including quotes and comment markers.
inline const char* kLabel = "énergie — 消費電力 // \"quoted\" …";

// A string containing what would be an HIB009 conversion.
inline const char* kFormula = "seconds = total_ms / 1000.0";

}  // namespace fixture

#endif  // HIBERNATOR_TOOLS_SIMLINT_FIXTURES_TOKENIZER_TORTURE_H_
