// Known-bad fixture for HIB010: a raw C output primitive that slips past
// HIB003's printf/cout patterns.
#include <cstdio>

namespace hib {

void ReportFailure(const char* what) {
  std::fputs(what, stderr);  // should be HIB_LOG(kError) << what
}

}  // namespace hib
