// HIB024: declared contracts must hold at every call site.  Engine::Step
// requires the shard context and Engine::Touch requires a live handle; the
// caller neither declares the same contracts nor establishes them.
#include "src/util/thread_annotations.h"

struct PoolHandle {
  unsigned index = 0;
  unsigned generation = 0;
};

class Engine {
 public:
  void Step() HIB_THREAD_CONTEXT(kShardContext);
  void Touch(PoolHandle h) HIB_REQUIRES_LIVE(h);
};

void Caller() {
  Engine e;
  e.Step();  // no HIB_THREAD_CONTEXT on Caller, no ThreadContextScope
  PoolHandle h;
  e.Touch(h);  // h was never acquired, IsLive-checked, or declared live
}
