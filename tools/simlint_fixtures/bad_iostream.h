// Fixture: a header pulling in <iostream> outside the log/check sinks.
// Expected finding: HIB002 (exactly one).
#ifndef HIBERNATOR_TOOLS_SIMLINT_FIXTURES_BAD_IOSTREAM_H_
#define HIBERNATOR_TOOLS_SIMLINT_FIXTURES_BAD_IOSTREAM_H_

#include <iostream>

namespace hib {

inline int FixtureAnswer() { return 42; }

}  // namespace hib

#endif  // HIBERNATOR_TOOLS_SIMLINT_FIXTURES_BAD_IOSTREAM_H_
