// HIB025: the disk layer may depend downward (util, obs, trace, sim) but
// never upward — policy decides *about* disks, disks know nothing of policy.
#include "src/policy/policy.h"
#include "src/sim/simulator.h"

int DiskLocalHelper() { return 1; }
