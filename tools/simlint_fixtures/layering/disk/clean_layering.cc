// Clean HIB025: disk reaching down the DAG (sim, util) is the design.
#include "src/sim/simulator.h"
#include "src/util/units.h"

int DiskCleanHelper() { return 2; }
