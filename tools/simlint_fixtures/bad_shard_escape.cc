// HIB022: shard-owned state escaping the shard run — both ways.
//
// The direct form pushes the address of a stack-local Simulator into a
// static container; the field-sensitive form stashes it in a member of a
// class that a static holder keeps alive across shard runs.  Either way a
// later shard (or the merge thread) can reach freed state.
#include <vector>

class Simulator {
 public:
  void Step() {}
};

class Registry {
 public:
  void Track(Simulator& s) { sim_ = &s; }

 private:
  Simulator* sim_ = nullptr;
};

static std::vector<Simulator*> g_live_sims;  // NOLINT(HIB006)
static Registry g_registry;                  // NOLINT(HIB006)

void RunExperiment() {
  Simulator sim;
  g_live_sims.push_back(&sim);  // NOLINT(HIB019)
  g_registry.Track(sim);        // NOLINT(HIB019)
  sim.Step();
}
