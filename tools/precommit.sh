#!/usr/bin/env bash
# Fast pre-commit gate: format check + simlint, scoped to the files the
# commit actually touches.  Wire it up with:
#
#   ln -s ../../tools/precommit.sh .git/hooks/pre-commit
#
# or run it by hand before pushing.  Scope rules:
#   - staged changes (the default) when invoked as a git hook;
#   - with --all, the full tree (what the CI lint job runs).
#
# simlint is invoked per changed file, which keeps the hook under a second;
# cross-file rules (HIB018+) get their full-tree run in CI and in ctest's
# simlint_repo entry, so a hook pass is necessary, not sufficient.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--all" ]]; then
  tools/format.sh --check
  python3 tools/simlint.py src tests bench examples
  echo "precommit: full tree clean"
  exit 0
fi

mapfile -t changed < <(git diff --cached --name-only --diff-filter=ACMR \
                         -- '*.h' '*.cc' '*.cpp' \
                       | grep -v '^tools/simlint_fixtures/' || true)

if [[ ${#changed[@]} -eq 0 ]]; then
  echo "precommit: no C++ sources staged; nothing to check"
  exit 0
fi

if command -v clang-format > /dev/null 2>&1; then
  clang-format --dry-run --Werror "${changed[@]}"
else
  echo "precommit: clang-format not found; skipping format check" >&2
fi

# --partial: a NOLINT for a cross-file rule (HIB018+) cannot be proven stale
# without the whole call graph in scope, so HIB099 stays quiet for those here.
python3 tools/simlint.py --partial "${changed[@]}"
echo "precommit: ${#changed[@]} changed file(s) clean"
