#!/usr/bin/env python3
"""Self-test for tools/check_bench_regression.py.

Builds throwaway bench artifacts and baselines in a temp directory and checks
every gate outcome: within-threshold slowdowns pass, beyond-threshold
slowdowns fail, speedups pass, missing baselines skip, and malformed
artifacts fail hard.  Registered in ctest as `check_bench_regression_selftest`.
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
GATE = os.path.join(HERE, "check_bench_regression.py")


def write_json(path, payload):
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f)


def run_gate(files, baseline_dir, threshold=None):
    cmd = [sys.executable, GATE, "--baseline-dir", baseline_dir]
    if threshold is not None:
        cmd += ["--threshold", str(threshold)]
    cmd += files
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def main():
    failures = []

    def check(label, got_code, want_code, out, want_fragment=None):
        if got_code != want_code:
            failures.append(f"{label}: expected exit {want_code}, got "
                            f"{got_code}: {out.strip()}")
        elif want_fragment and want_fragment not in out:
            failures.append(f"{label}: expected output mentioning "
                            f"{want_fragment!r}, got: {out.strip()}")

    with tempfile.TemporaryDirectory() as tmp:
        baselines = os.path.join(tmp, "baselines")
        os.mkdir(baselines)
        write_json(os.path.join(baselines, "BENCH_fleet.json"),
                   {"bench": "fleet", "events_per_sec": 1000000.0})

        # 5% slower than baseline: inside the default 10% threshold.
        ok_path = os.path.join(tmp, "BENCH_fleet.json")
        write_json(ok_path, {"bench": "fleet", "events_per_sec": 950000.0})
        code, out = run_gate([ok_path], baselines)
        check("within-threshold", code, 0, out, "ok BENCH_fleet.json")

        # 15% slower: regression.
        write_json(ok_path, {"bench": "fleet", "events_per_sec": 850000.0})
        code, out = run_gate([ok_path], baselines)
        check("regression", code, 1, out, "FAIL BENCH_fleet.json")

        # The same artifact passes a looser explicit threshold.
        code, out = run_gate([ok_path], baselines, threshold=0.20)
        check("loose-threshold", code, 0, out)

        # Faster than baseline: never fails.
        write_json(ok_path, {"bench": "fleet", "events_per_sec": 2000000.0})
        code, out = run_gate([ok_path], baselines)
        check("speedup", code, 0, out)

        # No baseline: note + skip.
        new_path = os.path.join(tmp, "BENCH_new.json")
        write_json(new_path, {"bench": "new", "events_per_sec": 5.0})
        code, out = run_gate([new_path], baselines)
        check("missing-baseline", code, 0, out, "no baseline")

        # Malformed artifact (no events_per_sec): hard failure.
        bad_path = os.path.join(tmp, "BENCH_bad.json")
        write_json(bad_path, {"bench": "bad"})
        code, out = run_gate([bad_path], baselines)
        check("malformed", code, 1, out, "events_per_sec")

        # One bad file fails the batch even when the others pass.
        code, out = run_gate([new_path, ok_path, bad_path], baselines)
        check("batch", code, 1, out)

        # Multi-mix artifacts gate on aggregate_events_per_sec (the
        # bench_eventqueue shape); a regression there must still fail.
        write_json(os.path.join(baselines, "BENCH_agg.json"),
                   {"bench": "agg", "aggregate_events_per_sec": 1000000.0})
        agg_path = os.path.join(tmp, "BENCH_agg.json")
        write_json(agg_path, {"bench": "agg", "aggregate_events_per_sec": 950000.0})
        code, out = run_gate([agg_path], baselines)
        check("aggregate-within", code, 0, out, "ok BENCH_agg.json")
        write_json(agg_path, {"bench": "agg", "aggregate_events_per_sec": 850000.0})
        code, out = run_gate([agg_path], baselines)
        check("aggregate-regression", code, 1, out, "FAIL BENCH_agg.json")

    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print("ok: 9 regression-gate scenarios behaved as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
